type state = {
  until : float; (* [infinity] for a cancel-only deadline *)
  budget_ms : int;
  cancelled : bool Atomic.t;
  mu : Mutex.t;
  mutable hits : string list; (* reverse chronological *)
}

type t = state option

let none = None

(* The monotonic clock: an NTP step through a wall-clock deadline would
   either fire the budget instantly (step forward) or extend it without
   bound (step back).  CLOCK_MONOTONIC cannot step, so a budget always
   measures real elapsed runtime. *)
let now = Eda_obs.Clock.now_s

let make ~budget_ms ~until =
  {
    until;
    budget_ms;
    cancelled = Atomic.make false;
    mu = Mutex.create ();
    hits = [];
  }

let start ~budget_ms =
  if budget_ms <= 0 then None
  else
    Some (make ~budget_ms ~until:(now () +. (float_of_int budget_ms /. 1000.0)))

let cancellable ?(budget_ms = 0) () =
  if budget_ms <= 0 then Some (make ~budget_ms:0 ~until:infinity)
  else Some (make ~budget_ms ~until:(now () +. (float_of_int budget_ms /. 1000.0)))

let budget_ms = function None -> 0 | Some s -> s.budget_ms
let cancel = function None -> () | Some s -> Atomic.set s.cancelled true
let cancelled = function None -> false | Some s -> Atomic.get s.cancelled

let expired = function
  | None -> false
  | Some s -> Atomic.get s.cancelled || now () >= s.until

let remaining_ms = function
  | None -> None
  | Some s when s.until = infinity ->
      (* cancel-only deadline: no time budget to report *)
      if Atomic.get s.cancelled then Some 0 else None
  | Some s ->
      if Atomic.get s.cancelled then Some 0
      else
        Some (max 0 (int_of_float (Float.ceil ((s.until -. now ()) *. 1000.0))))

let mark t ~phase =
  match t with
  | None -> ()
  | Some s ->
      Mutex.protect s.mu (fun () ->
          if not (List.mem phase s.hits) then begin
            s.hits <- phase :: s.hits;
            (* Registered only when a deadline actually fires, so
               deadline-free runs export a byte-identical metrics set. *)
            Eda_obs.Metrics.incr
              (Eda_obs.Metrics.counter ~labels:[ ("phase", phase) ]
                 "guard.deadline_hits")
          end)

let check t ~phase =
  if expired t then begin
    mark t ~phase;
    true
  end
  else false

let hits t =
  match t with
  | None -> []
  | Some s -> Mutex.protect s.mu (fun () -> List.rev s.hits)

let error t ~phase = Error.Deadline { phase; budget_ms = budget_ms t }
