(** Cooperative wall-clock deadlines with graceful degradation.

    A deadline is started once per flow ([start ~budget_ms]) and threaded
    down to the long-running loops (ID-router rip-up, NC-router
    negotiation, SINO improvement passes, refinement).  Each loop polls
    {!expired} at a safe checkpoint — a point where stopping leaves a
    {e valid} (connected, capacity-respecting) partial result — and on
    expiry keeps its best-so-far answer instead of raising.  The phase
    records the truncation with {!mark}, which feeds both the flow
    result's degradation tags and the [guard.deadline_hits] counter.

    Degraded results stay deterministic in {e content}: a checkpoint only
    ever skips optional improvement work, never reorders it, so two runs
    that expire at different checkpoints differ in quality but each is a
    prefix of the same deterministic improvement sequence (see
    DESIGN.md).  [t = none] (or [budget_ms <= 0]) disables every check at
    a single branch's cost. *)

type t

(** No deadline: [expired] is always [false], [mark] a no-op. *)
val none : t

(** [start ~budget_ms] — deadline [budget_ms] from now; [budget_ms <= 0]
    is {!none}. *)
val start : budget_ms:int -> t

(** [cancellable ?budget_ms ()] — a deadline that can additionally be
    tripped externally with {!cancel} (client disconnect, server drain).
    Unlike {!start}, the result is never {!none}: with [budget_ms <= 0]
    (the default) it has no time budget — it only expires when
    cancelled — so a cancel checkpoint costs one atomic load.  The serve
    daemon arms one per request. *)
val cancellable : ?budget_ms:int -> unit -> t

(** [cancel t] — trip the deadline now (thread- and domain-safe,
    idempotent, signal-handler-safe: one atomic store).  After this
    {!expired} is [true] and in-flight work degrades at its next
    checkpoint exactly as on time expiry.  No-op on {!none}. *)
val cancel : t -> unit

(** Has {!cancel} been called?  (Distinguishes "client went away / drain"
    from "budget ran out" in server bookkeeping; both read as
    {!expired}.) *)
val cancelled : t -> bool

(** The budget this deadline was created with; 0 for {!none} and for
    cancel-only deadlines. *)
val budget_ms : t -> int

(** Has the budget been exhausted?  Cheap enough for inner loops. *)
val expired : t -> bool

(** Milliseconds of budget left (clamped at 0); [None] for {!none} and
    for a cancel-only deadline that has not been cancelled ([Some 0] once
    it has).  Feeds the [--progress] heartbeat's "deadline left"
    column. *)
val remaining_ms : t -> int option

(** [mark t ~phase] — record that [phase] was truncated (idempotent per
    phase; bumps [guard.deadline_hits{phase}] on first mark). *)
val mark : t -> phase:string -> unit

(** [check t ~phase] — [expired t], marking [phase] when true.  The
    one-liner for loop conditions on the coordinating domain. *)
val check : t -> phase:string -> bool

(** Phases marked so far, in first-marked order. *)
val hits : t -> string list

(** The {!Error.Deadline} value for this budget — for call sites with no
    best-so-far state to degrade to. *)
val error : t -> phase:string -> Error.t
