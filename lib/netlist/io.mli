(** Plain-text netlist serialization, so externally produced placements
    can run through the flows and generated benchmarks can be archived.

    Format (one record per line, [#] comments ignored):

    {v
    gsino-netlist v1
    name <string>
    grid <w> <h> <gcell_um>
    net <id> <src_x> <src_y> <sink_x> <sink_y> [<sink_x> <sink_y> ...]
    v}

    Net ids must be consecutive from 0 and pins inside the grid
    (checked on load with {!Netlist.validate}). *)

(** [to_string nl] / [of_string s] — serialization round-trip. *)
val to_string : Netlist.t -> string

(** [of_string ?file s] raises [Eda_guard.Error.Error (Parse _)] — with
    the 1-based line number, the offending token and [file] when given —
    on malformed input: bad/missing records, duplicate or
    non-consecutive net ids, pins outside the declared grid, and absurd
    counts (grid dimensions, net ids, sink counts beyond any plausible
    benchmark). *)
val of_string : ?file:string -> string -> Netlist.t

(** [save path nl] / [load path] — file convenience wrappers.  [load] is
    an [io.load] fault-injection site and tags parse errors with
    [path]. *)
val save : string -> Netlist.t -> unit

val load : string -> Netlist.t
