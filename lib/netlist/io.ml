open Eda_geom

let magic = "gsino-netlist v1"

let to_string nl =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  Buffer.add_char b '\n';
  Buffer.add_string b (Printf.sprintf "name %s\n" nl.Netlist.name);
  Buffer.add_string b
    (Printf.sprintf "grid %d %d %.17g\n" nl.Netlist.grid_w nl.Netlist.grid_h
       nl.Netlist.gcell_um);
  Array.iter
    (fun n ->
      Buffer.add_string b
        (Printf.sprintf "net %d %d %d" n.Net.id n.Net.source.Point.x
           n.Net.source.Point.y);
      Array.iter
        (fun s -> Buffer.add_string b (Printf.sprintf " %d %d" s.Point.x s.Point.y))
        n.Net.sinks;
      Buffer.add_char b '\n')
    nl.Netlist.nets;
  Buffer.contents b

(* Sanity ceilings: records beyond these are corrupt or hostile input,
   not plausible benchmarks (the largest ISPD-class grids are ~1e3 a
   side), and rejecting early keeps a bad count from driving a huge
   allocation. *)
let max_grid_dim = 1_000_000
let max_grid_cells = 100_000_000
let max_net_id = 10_000_000
let max_sinks = 100_000

let fail ?file lineno token msg =
  Eda_guard.Error.raise_
    (Eda_guard.Error.Parse { file; line = lineno; token; msg })

let of_string ?file s =
  let fail lineno token msg = fail ?file lineno token msg in
  let lines = String.split_on_char '\n' s in
  let content =
    List.mapi (fun idx raw -> (idx + 1, String.trim raw)) lines
    |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')
  in
  let last_line = match List.rev content with (n, _) :: _ -> n | [] -> 1 in
  (match content with
  | (_, first) :: _ when first = magic -> ()
  | (lineno, line) :: _ -> fail lineno line "missing magic header"
  | [] -> fail 1 "" "empty input");
  let name = ref None and dims = ref None in
  let nets = ref [] (* (lineno, net), reverse input order *) in
  let parse_int lineno what s =
    match int_of_string_opt s with
    | Some v -> v
    | None -> fail lineno s ("bad " ^ what)
  in
  List.iter
    (fun (lineno, line) ->
      if line <> magic then
        match String.split_on_char ' ' line |> List.filter (fun t -> t <> "") with
        | "name" :: rest -> name := Some (String.concat " " rest)
        | [ "grid"; w; h; g ] -> (
            match float_of_string_opt g with
            | Some gc ->
                let w = parse_int lineno "grid width" w in
                let h = parse_int lineno "grid height" h in
                if w <= 0 || h <= 0 then
                  fail lineno line "grid dimensions must be positive";
                if w > max_grid_dim || h > max_grid_dim || w * h > max_grid_cells
                then fail lineno line "absurd grid dimensions";
                if gc <= 0.0 || not (Float.is_finite gc) then
                  fail lineno g "gcell pitch must be positive and finite";
                dims := Some (w, h, gc)
            | None -> fail lineno g "bad gcell pitch")
        | [ "grid" ] | "grid" :: _ -> fail lineno line "bad grid record"
        | "net" :: id :: sx :: sy :: sinks ->
            let id = parse_int lineno "net id" id in
            if id < 0 then fail lineno (string_of_int id) "negative net id";
            if id > max_net_id then fail lineno (string_of_int id) "absurd net id";
            if List.length sinks > 2 * max_sinks then
              fail lineno (string_of_int (List.length sinks / 2))
                "absurd sink count";
            let source =
              Point.make (parse_int lineno "x" sx) (parse_int lineno "y" sy)
            in
            let rec pair acc = function
              | [] -> List.rev acc
              | x :: y :: rest ->
                  pair
                    (Point.make (parse_int lineno "x" x) (parse_int lineno "y" y) :: acc)
                    rest
              | [ t ] -> fail lineno t "odd number of sink coordinates"
            in
            let sinks = Array.of_list (pair [] sinks) in
            if Array.length sinks = 0 then fail lineno line "net without sinks";
            nets := (lineno, Net.make ~id ~source ~sinks) :: !nets
        | _ -> fail lineno line "unrecognized record")
    content;
  match (!name, !dims) with
  | None, _ -> fail last_line "" "missing name record"
  | _, None -> fail last_line "" "missing grid record"
  | Some name, Some (grid_w, grid_h, gcell_um) ->
      let located =
        (* stable over input order: on duplicate ids the later line is
           reported ([!nets] accumulates reversed, so re-reverse first). *)
        List.stable_sort
          (fun (_, a) (_, b) -> compare a.Net.id b.Net.id)
          (List.rev !nets)
      in
      (* Ids must be consecutive from 0; report the offending line. *)
      List.iteri
        (fun i (lineno, n) ->
          if n.Net.id <> i then
            if i > 0 && n.Net.id = (List.nth located (i - 1) |> snd).Net.id then
              fail lineno (string_of_int n.Net.id) "duplicate net id"
            else
              fail lineno (string_of_int n.Net.id)
                (Printf.sprintf "non-consecutive net ids (expected %d)" i))
        located;
      (* Pins must sit inside the declared grid; report per line. *)
      let b = Rect.make 0 0 (grid_w - 1) (grid_h - 1) in
      List.iter
        (fun (lineno, n) ->
          List.iter
            (fun p ->
              if not (Rect.contains b p) then
                fail lineno
                  (Printf.sprintf "%d %d" p.Point.x p.Point.y)
                  (Printf.sprintf "pin of net %d outside %dx%d grid" n.Net.id
                     grid_w grid_h))
            (Net.pins n))
        located;
      let nets = Array.of_list (List.map snd located) in
      let nl = Netlist.make ~name ~grid_w ~grid_h ~gcell_um nets in
      (* Safety net: the checks above subsume validate, so this only
         fires on a parser bug. *)
      (try Netlist.validate nl
       with Invalid_argument m -> fail last_line "" m);
      nl

let save path nl =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string nl))

let load path =
  Eda_guard.Fault.point "io.load";
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      of_string ~file:path (really_input_string ic n))
