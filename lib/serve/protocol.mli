(** The [gsino-serve-v1] wire protocol: length-prefixed JSON frames.

    A frame is a 4-byte big-endian payload length followed by that many
    bytes of UTF-8 JSON.  Every payload object carries
    [{"schema": "gsino-serve-v1"}].  A connection carries exactly one
    request frame and one response frame; the server closes after
    responding, so a client reading to EOF never blocks on a second
    frame.

    Requests:
    - [{"kind": "ping"}] — liveness probe, answered with [pong];
    - [{"kind": "stats"}] — daemon health snapshot;
    - [{"kind": "route", "netlist": "<gsino-netlist v1 text>",
       "options": {...}}] — run the flow.  [options] mirrors
      {!Gsino.Flow.Config} where a client may choose ([flow], [router],
      [budgeting], [seed], [rate], [deadline_ms]) plus the [artifacts]
      the response should embed; [jobs] and the panel cache stay server
      decisions.  Unknown option fields are rejected, not ignored — a
      typo must not silently change a routing run.

    Responses: [pong], [stats], [result] (status ["ok"]/["degraded"],
    the one-line summary, lint findings, and the requested artifacts as
    strings), or [error] carrying the {!Eda_guard.Error} class name, GSL
    code, documented exit code and message.

    Decoding failures are typed, never exceptions: malformed JSON,
    schema/kind mismatches, oversized or truncated frames each map to an
    {!Eda_guard.Error.Frame} reject (GSL0030) the server frames back
    before closing. *)

module Error := Eda_guard.Error

val schema : string

(** 64 MiB — the default bound a reader enforces on announced frame
    lengths ({!read_frame} rejects bigger announcements without buffering
    them). *)
val max_frame_default : int

(** {1 Framing} *)

(** [write_frame fd payload] — header + payload, handling short writes.
    Raises [Unix.Unix_error] (e.g. [EPIPE]) like any socket write;
    [Error.of_exn] maps those to typed {!Eda_guard.Error.Io}. *)
val write_frame : Unix.file_descr -> string -> unit

type read_result =
  | Frame of string
  | Eof  (** peer closed cleanly before the first header byte *)
  | Reject of Error.t
      (** always a [Frame _] class: truncated, oversized, bad length, or
          stalled past [timeout_s] *)

(** [read_frame ?max ?timeout_s fd] — read one frame.  [max] (default
    {!max_frame_default}) bounds the announced length; [timeout_s]
    bounds each wait for more bytes (absent = block forever).  I/O
    errors propagate as [Unix.Unix_error]. *)
val read_frame :
  ?max:int -> ?timeout_s:float -> Unix.file_descr -> read_result

(** {1 Vocabulary} *)

type artifact = Report | Metrics | Journal | Trace

val artifact_name : artifact -> string
val artifact_of_name : string -> artifact option

type options = {
  kind : Gsino.Flow.kind;
  router : Gsino.Flow.router;
  budgeting : Gsino.Flow.budgeting;
  seed : int;
  rate : float;
  deadline_ms : int;  (** per-request budget; 0 = server default only *)
  artifacts : artifact list;  (** artifacts to embed in the result *)
}

(** [gsino] flow, iterative deletion, uniform budgeting, seed 7, rate
    0.30, no deadline, no artifacts — the same defaults as the batch
    CLIs, so an empty [options] object routes exactly like
    [gsino_lint -k gsino]. *)
val default_options : options

type request = Ping | Stats | Route of { netlist : string; options : options }

type stats = {
  uptime_s : float;
  served : int;  (** requests answered with a non-error response *)
  errors : int;  (** requests answered with a framed error *)
  disconnects : int;  (** clients that vanished mid-request *)
  rejected : (string * int) list;  (** admission rejects, by reason *)
  queue_depth : int;
  active : int;  (** requests currently being served *)
  workers : int;
  jobs : int;
  cache_len : int;  (** entries in the shared panel cache *)
  draining : bool;
}

type response =
  | Pong
  | Stats_reply of stats
  | Result of {
      status : string;  (** ["ok"] or ["degraded"] *)
      summary : string;
      findings : string list;  (** lint findings, [Diag.to_line] format *)
      artifacts : (string * string) list;  (** artifact name -> contents *)
    }
  | Err of { cls : string; gsl : int; exit_code : int; message : string }

(** The framed rendering of a typed failure: class name, GSL code and
    documented exit code travel with the message, so a thin client can
    exit with the same status the batch CLI would have. *)
val error_response : Error.t -> response

(** {1 Codecs} — encoding is total; decoding returns a typed
    {!Eda_guard.Error.Frame} reject on malformed input. *)

val request_to_json : request -> Eda_obs.Json.t
val request_of_string : string -> (request, Error.t) result
val response_to_json : response -> Eda_obs.Json.t
val response_of_string : string -> (response, Error.t) result

(** [send_request] / [send_response] — encode and {!write_frame}. *)
val send_request : Unix.file_descr -> request -> unit

val send_response : Unix.file_descr -> response -> unit
