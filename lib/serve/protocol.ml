module Json = Eda_obs.Json
module Error = Eda_guard.Error
module Flow = Gsino.Flow

let schema = "gsino-serve-v1"
let max_frame_default = 64 * 1024 * 1024

(* ------------------------------ framing ------------------------------ *)

exception Timeout

let rec write_all fd buf off len =
  if len > 0 then begin
    let n = Unix.write fd buf off len in
    write_all fd buf (off + n) (len - n)
  end

let write_frame fd payload =
  let n = String.length payload in
  if n > 0x7fffffff then invalid_arg "Protocol.write_frame: frame too large";
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (Int32.of_int n);
  write_all fd hdr 0 4;
  write_all fd (Bytes.of_string payload) 0 n

let wait_readable ~timeout_s fd =
  match timeout_s with
  | None -> ()
  | Some t -> (
      match Unix.select [ fd ] [] [] t with
      | [], _, _ -> raise Timeout
      | _ :: _, _, _ -> ())

(* Read up to [len] bytes, stopping early only at EOF; returns the count
   actually read.  [timeout_s] bounds each wait for more bytes. *)
let read_upto ~timeout_s fd buf off len =
  let got = ref 0 in
  (try
     while !got < len do
       wait_readable ~timeout_s fd;
       let n = Unix.read fd buf (off + !got) (len - !got) in
       if n = 0 then raise Exit;
       got := !got + n
     done
   with Exit -> ());
  !got

type read_result =
  | Frame of string
  | Eof  (** peer closed cleanly before the first header byte *)
  | Reject of Error.t

let read_frame ?(max = max_frame_default) ?timeout_s fd =
  let hdr = Bytes.create 4 in
  try
    match read_upto ~timeout_s fd hdr 0 4 with
    | 0 -> Eof
    | n when n < 4 ->
        Reject
          (Error.Frame
             {
               what = "truncated";
               detail = Printf.sprintf "header: got %d of 4 bytes" n;
             })
    | _ ->
        let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
        if len < 0 then
          Reject
            (Error.Frame
               { what = "bad-length"; detail = "negative frame length" })
        else if len > max then
          (* reject before reading the body: an oversized announcement
             must not make the server buffer it *)
          Reject
            (Error.Frame
               {
                 what = "oversized";
                 detail =
                   Printf.sprintf "%d-byte frame exceeds the %d-byte limit" len
                     max;
               })
        else begin
          let buf = Bytes.create len in
          let n = read_upto ~timeout_s fd buf 0 len in
          if n < len then
            Reject
              (Error.Frame
                 {
                   what = "truncated";
                   detail = Printf.sprintf "body: got %d of %d bytes" n len;
                 })
          else Frame (Bytes.unsafe_to_string buf)
        end
  with Timeout ->
    Reject
      (Error.Frame
         { what = "timeout"; detail = "peer stalled mid-frame" })

(* ------------------------- request vocabulary ------------------------ *)

type artifact = Report | Metrics | Journal | Trace

let artifact_name = function
  | Report -> "report"
  | Metrics -> "metrics"
  | Journal -> "journal"
  | Trace -> "trace"

let artifact_of_name = function
  | "report" -> Some Report
  | "metrics" -> Some Metrics
  | "journal" -> Some Journal
  | "trace" -> Some Trace
  | _ -> None

type options = {
  kind : Flow.kind;
  router : Flow.router;
  budgeting : Flow.budgeting;
  seed : int;
  rate : float;
  deadline_ms : int;
  artifacts : artifact list;
}

let default_options =
  {
    kind = Flow.Gsino;
    router = Flow.Iterative_deletion;
    budgeting = Flow.Uniform;
    seed = 7;
    rate = 0.30;
    deadline_ms = 0;
    artifacts = [];
  }

type request = Ping | Stats | Route of { netlist : string; options : options }

type stats = {
  uptime_s : float;
  served : int;
  errors : int;
  disconnects : int;
  rejected : (string * int) list;
  queue_depth : int;
  active : int;
  workers : int;
  jobs : int;
  cache_len : int;
  draining : bool;
}

type response =
  | Pong
  | Stats_reply of stats
  | Result of {
      status : string;
      summary : string;
      findings : string list;
      artifacts : (string * string) list;
    }
  | Err of { cls : string; gsl : int; exit_code : int; message : string }

let error_response e =
  Err
    {
      cls = Error.class_name e;
      gsl = Error.gsl_code e;
      exit_code = Error.exit_code e;
      message = Error.to_string e;
    }

(* ------------------------------ encoding ----------------------------- *)

let flow_name = function
  | Flow.Id_no -> "idno"
  | Flow.Isino -> "isino"
  | Flow.Gsino -> "gsino"

let flow_of_name = function
  | "idno" -> Some Flow.Id_no
  | "isino" -> Some Flow.Isino
  | "gsino" -> Some Flow.Gsino
  | _ -> None

let router_name = function
  | Flow.Iterative_deletion -> "id"
  | Flow.Negotiated -> "nc"

let router_of_name = function
  | "id" -> Some Flow.Iterative_deletion
  | "nc" -> Some Flow.Negotiated
  | _ -> None

let budgeting_name = function
  | Flow.Uniform -> "uniform"
  | Flow.Route_aware -> "route-aware"

let budgeting_of_name = function
  | "uniform" -> Some Flow.Uniform
  | "route-aware" -> Some Flow.Route_aware
  | _ -> None

let options_to_json o =
  Json.Obj
    [
      ("flow", Json.Str (flow_name o.kind));
      ("router", Json.Str (router_name o.router));
      ("budgeting", Json.Str (budgeting_name o.budgeting));
      ("seed", Json.Int o.seed);
      ("rate", Json.Float o.rate);
      ("deadline_ms", Json.Int o.deadline_ms);
      ( "artifacts",
        Json.List (List.map (fun a -> Json.Str (artifact_name a)) o.artifacts)
      );
    ]

let with_schema fields = Json.Obj (("schema", Json.Str schema) :: fields)

let request_to_json = function
  | Ping -> with_schema [ ("kind", Json.Str "ping") ]
  | Stats -> with_schema [ ("kind", Json.Str "stats") ]
  | Route { netlist; options } ->
      with_schema
        [
          ("kind", Json.Str "route");
          ("netlist", Json.Str netlist);
          ("options", options_to_json options);
        ]

let stats_to_json s =
  with_schema
    [
      ("kind", Json.Str "stats");
      ("uptime_s", Json.Float s.uptime_s);
      ("served", Json.Int s.served);
      ("errors", Json.Int s.errors);
      ("disconnects", Json.Int s.disconnects);
      ( "rejected",
        Json.Obj (List.map (fun (r, n) -> (r, Json.Int n)) s.rejected) );
      ("queue_depth", Json.Int s.queue_depth);
      ("active", Json.Int s.active);
      ("workers", Json.Int s.workers);
      ("jobs", Json.Int s.jobs);
      ("cache_len", Json.Int s.cache_len);
      ("draining", Json.Bool s.draining);
    ]

let response_to_json = function
  | Pong -> with_schema [ ("kind", Json.Str "pong") ]
  | Stats_reply s -> stats_to_json s
  | Result { status; summary; findings; artifacts } ->
      with_schema
        [
          ("kind", Json.Str "result");
          ("status", Json.Str status);
          ("summary", Json.Str summary);
          ("findings", Json.List (List.map (fun f -> Json.Str f) findings));
          ( "artifacts",
            Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) artifacts) );
        ]
  | Err { cls; gsl; exit_code; message } ->
      with_schema
        [
          ("kind", Json.Str "error");
          ("class", Json.Str cls);
          ("gsl", Json.Int gsl);
          ("exit", Json.Int exit_code);
          ("message", Json.Str message);
        ]

(* ------------------------------ decoding ----------------------------- *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun msg -> raise (Bad msg)) fmt

let reject_of_bad detail = Error.Frame { what = "bad-schema"; detail }

let str what = function
  | Json.Str s -> s
  | Json.Null | Json.Bool _ | Json.Int _ | Json.Float _ | Json.List _
  | Json.Obj _ ->
      bad "%s: expected a string" what

let int_ what = function
  | Json.Int i -> i
  | Json.Null | Json.Bool _ | Json.Float _ | Json.Str _ | Json.List _
  | Json.Obj _ ->
      bad "%s: expected an integer" what

let num what = function
  | Json.Int i -> float_of_int i
  | Json.Float f -> f
  | Json.Null | Json.Bool _ | Json.Str _ | Json.List _ | Json.Obj _ ->
      bad "%s: expected a number" what

let bool_ what = function
  | Json.Bool b -> b
  | Json.Null | Json.Int _ | Json.Float _ | Json.Str _ | Json.List _
  | Json.Obj _ ->
      bad "%s: expected a boolean" what

let field what j key =
  match Json.member key j with
  | Some v -> v
  | None -> bad "%s: missing field %s" what key

let check_schema j =
  match Json.member "schema" j with
  | Some (Json.Str s) when s = schema -> ()
  | Some (Json.Str s) -> bad "unsupported schema %s (want %s)" s schema
  | Some
      ( Json.Null | Json.Bool _ | Json.Int _ | Json.Float _ | Json.List _
      | Json.Obj _ )
  | None ->
      bad "missing schema field (want %s)" schema

let named what of_name v =
  let name = str what v in
  match of_name name with
  | Some x -> x
  | None -> bad "%s: unknown value %S" what name

let options_of_json j =
  match j with
  | Json.Obj fields ->
      List.fold_left
        (fun o (k, v) ->
          match k with
          | "flow" -> { o with kind = named "options.flow" flow_of_name v }
          | "router" ->
              { o with router = named "options.router" router_of_name v }
          | "budgeting" ->
              {
                o with
                budgeting = named "options.budgeting" budgeting_of_name v;
              }
          | "seed" -> { o with seed = int_ "options.seed" v }
          | "rate" -> { o with rate = num "options.rate" v }
          | "deadline_ms" ->
              { o with deadline_ms = int_ "options.deadline_ms" v }
          | "artifacts" -> (
              match v with
              | Json.List l ->
                  {
                    o with
                    artifacts =
                      List.map (named "options.artifacts" artifact_of_name) l;
                  }
              | Json.Null | Json.Bool _ | Json.Int _ | Json.Float _
              | Json.Str _ | Json.Obj _ ->
                  bad "options.artifacts: expected a list")
          | k -> bad "options: unknown field %S" k)
        default_options fields
  | Json.Null | Json.Bool _ | Json.Int _ | Json.Float _ | Json.Str _
  | Json.List _ ->
      bad "options: expected an object"

let request_of_json j =
  try
    check_schema j;
    match str "kind" (field "request" j "kind") with
    | "ping" -> Ok Ping
    | "stats" -> Ok Stats
    | "route" ->
        let netlist = str "netlist" (field "route request" j "netlist") in
        let options =
          match Json.member "options" j with
          | Some o -> options_of_json o
          | None -> default_options
        in
        Ok (Route { netlist; options })
    | k -> bad "unknown request kind %S" k
  with Bad msg -> Error (reject_of_bad msg)

let request_of_string s =
  match Json.of_string s with
  | Error msg -> Error (Error.Frame { what = "bad-json"; detail = msg })
  | Ok j -> request_of_json j

let stats_of_json j =
  {
    uptime_s = num "uptime_s" (field "stats" j "uptime_s");
    served = int_ "served" (field "stats" j "served");
    errors = int_ "errors" (field "stats" j "errors");
    disconnects = int_ "disconnects" (field "stats" j "disconnects");
    rejected =
      (match field "stats" j "rejected" with
      | Json.Obj fields ->
          List.map (fun (k, v) -> (k, int_ ("rejected." ^ k) v)) fields
      | Json.Null | Json.Bool _ | Json.Int _ | Json.Float _ | Json.Str _
      | Json.List _ ->
          bad "stats.rejected: expected an object");
    queue_depth = int_ "queue_depth" (field "stats" j "queue_depth");
    active = int_ "active" (field "stats" j "active");
    workers = int_ "workers" (field "stats" j "workers");
    jobs = int_ "jobs" (field "stats" j "jobs");
    cache_len = int_ "cache_len" (field "stats" j "cache_len");
    draining = bool_ "draining" (field "stats" j "draining");
  }

let response_of_json j =
  try
    check_schema j;
    match str "kind" (field "response" j "kind") with
    | "pong" -> Ok Pong
    | "stats" -> Ok (Stats_reply (stats_of_json j))
    | "result" ->
        let strs what = function
          | Json.List l -> List.map (str what) l
          | Json.Null | Json.Bool _ | Json.Int _ | Json.Float _ | Json.Str _
          | Json.Obj _ ->
              bad "%s: expected a list" what
        in
        Ok
          (Result
             {
               status = str "status" (field "result" j "status");
               summary = str "summary" (field "result" j "summary");
               findings = strs "findings" (field "result" j "findings");
               artifacts =
                 (match field "result" j "artifacts" with
                 | Json.Obj fields ->
                     List.map
                       (fun (k, v) -> (k, str ("artifacts." ^ k) v))
                       fields
                 | Json.Null | Json.Bool _ | Json.Int _ | Json.Float _
                 | Json.Str _ | Json.List _ ->
                     bad "result.artifacts: expected an object");
             })
    | "error" ->
        Ok
          (Err
             {
               cls = str "class" (field "error" j "class");
               gsl = int_ "gsl" (field "error" j "gsl");
               exit_code = int_ "exit" (field "error" j "exit");
               message = str "message" (field "error" j "message");
             })
    | k -> bad "unknown response kind %S" k
  with Bad msg -> Error (reject_of_bad msg)

let response_of_string s =
  match Json.of_string s with
  | Error msg -> Error (Error.Frame { what = "bad-json"; detail = msg })
  | Ok j -> response_of_json j

let send fd msg = write_frame fd (Json.to_string msg)
let send_request fd r = send fd (request_to_json r)
let send_response fd r = send fd (response_to_json r)
