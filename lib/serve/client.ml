module Error = Eda_guard.Error

let io site msg = Error.Error (Error.Io { site; msg })

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  try
    Unix.connect fd (Unix.ADDR_UNIX path);
    fd
  with Unix.Unix_error (err, _, _) ->
    (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
    raise
      (io path
         (Printf.sprintf "cannot reach daemon: %s" (Unix.error_message err)))

let call ?timeout_s fd request =
  (try Protocol.send_request fd request
   with Unix.Unix_error (err, fn, _) ->
     raise (io fn (Unix.error_message err)));
  match Protocol.read_frame ?timeout_s fd with
  | Protocol.Frame payload -> (
      match Protocol.response_of_string payload with
      | Ok response -> response
      | Error e -> Error.raise_ e)
  | Protocol.Eof -> raise (io "read" "daemon closed the connection early")
  | Protocol.Reject e -> Error.raise_ e

let request ?timeout_s path req =
  let fd = connect path in
  Fun.protect
    ~finally:(fun () ->
      try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
    (fun () -> call ?timeout_s fd req)
