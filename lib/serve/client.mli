(** Thin client for the [gsino-serve-v1] protocol: one request per
    connection.

    Failures are typed: an unreachable socket, a mid-read disconnect or
    a reader-side frame reject raise {!Eda_guard.Error.Error} (an [Io]
    or [Frame] error), so CLI callers funnel them through the standard
    [guard_exceptions] exit-code mapping. *)

(** [connect path] — connect to the daemon socket.  Raises a typed [Io]
    error (GSL0032, exit 7) when the daemon is unreachable. *)
val connect : string -> Unix.file_descr

(** [call ?timeout_s fd req] — send one request, read the one response.
    [timeout_s] bounds each wait for response bytes. *)
val call : ?timeout_s:float -> Unix.file_descr -> Protocol.request -> Protocol.response

(** [request ?timeout_s path req] — {!connect}, {!call}, close. *)
val request : ?timeout_s:float -> string -> Protocol.request -> Protocol.response
