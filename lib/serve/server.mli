(** The routing daemon: a Unix-domain-socket server running the GSINO
    flow for concurrent clients, with per-request fault isolation.

    Lifecycle: {!start} binds the socket and spawns one accept domain
    plus [workers] request domains (each owning an {!Eda_exec} pool of
    [jobs] workers and a private metrics/journal/trace context);
    {!drain} (async-signal-safe) stops admission; {!wait} blocks until
    every in-flight request has finished or timed out, joins the
    domains, flushes the shared panel cache to [cache_dir] and unlinks
    the socket.  {!run} wires SIGTERM/SIGINT to {!drain} and does all of
    it.

    Isolation invariants (tested in [test_serve] and the CI serve gate):
    - any per-request failure — parse error, router panic, injected
      [serve.request] fault, expired deadline, malformed or oversized
      frame — produces a framed typed error (or a degraded result) on
      that connection only; the daemon keeps serving;
    - admission is bounded: beyond [queue_bound] queued requests,
      clients get a typed [overloaded] reject (GSL0031) instead of an
      unbounded queue;
    - a client that disconnects mid-request cancels that request's
      deadline cooperatively; the flow degrades and the slot frees;
    - request metrics/journal/trace exports are byte-comparable to the
      batch CLI's ([Metrics.rebase] to a startup baseline per request;
      the [serve.*] series belong to the daemon, not to requests). *)

type config = {
  socket : string;  (** path to bind; stale files are unlinked *)
  workers : int;  (** request domains (min 1) *)
  jobs : int;  (** [Eda_exec] pool size per request domain (min 1) *)
  queue_bound : int;  (** admitted-but-unstarted request cap *)
  max_frame : int;  (** request frame size bound *)
  request_deadline_ms : int;
      (** cap on any request's deadline; 0 = requests choose freely *)
  drain_ms : int;
      (** grace after {!drain} before in-flight deadlines are tripped;
          0 = wait for natural completion *)
  read_timeout_s : float;  (** per-wait stall bound reading a request *)
  cache_dir : string option;
      (** warm the shared panel cache from, and flush it to, this
          directory *)
}

(** [gsino.sock], 2 workers, 1 job each, queue bound 16, 64 MiB frames,
    no deadline cap, no drain grace, 10 s read timeout, no cache dir. *)
val default_config : config

type t

val start : config -> t

(** Stop admitting work.  One atomic store — safe from a signal
    handler. *)
val drain : t -> unit

val draining : t -> bool

(** Daemon health as served to [stats] requests. *)
val stats : t -> Protocol.stats

(** Block until drained (call {!drain} first or from elsewhere), then
    tear down: join domains, flush the panel cache, unlink the socket,
    publish the daemon-lifetime [serve.*] metrics. *)
val wait : t -> unit

(** {!start}, route SIGTERM/SIGINT to {!drain}, {!wait}. *)
val run : config -> unit
