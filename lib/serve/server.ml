module Metrics = Eda_obs.Metrics
module Journal = Eda_obs.Journal
module Trace = Eda_obs.Trace
module Log = Eda_obs.Log
module Json = Eda_obs.Json
module Clock = Eda_obs.Clock
module Error = Eda_guard.Error
module Deadline = Eda_guard.Deadline
module Fault = Eda_guard.Fault
module Flow = Gsino.Flow
module Tech = Gsino.Tech
module Diag = Eda_check.Diag
module Sensitivity = Eda_netlist.Sensitivity
module Io = Eda_netlist.Io
module Cache = Eda_sino.Cache

type config = {
  socket : string;
  workers : int;
  jobs : int;
  queue_bound : int;
  max_frame : int;
  request_deadline_ms : int;
  drain_ms : int;
  read_timeout_s : float;
  cache_dir : string option;
}

let default_config =
  {
    socket = "gsino.sock";
    workers = 2;
    jobs = 1;
    queue_bound = 16;
    max_frame = Protocol.max_frame_default;
    request_deadline_ms = 0;
    drain_ms = 0;
    read_timeout_s = 10.0;
    cache_dir = None;
  }

type job = {
  serial : int;
  fd : Unix.file_descr;
  netlist_text : string;
  options : Protocol.options;
}

type t = {
  cfg : config;
  lsock : Unix.file_descr;
  started_at : float;
  draining : bool Atomic.t;
  mu : Mutex.t;
  cond : Condition.t;
  queue : job Queue.t;
  mutable depth : int;
  mutable served : int;
  mutable errors : int;
  mutable disconnects : int;
  rejected : (string, int) Hashtbl.t;
  mutable active : int;
  active_deadlines : (int, Deadline.t) Hashtbl.t;
  mutable next_serial : int;
  mutable accept_done : bool;
  mutable workers_live : int;
  cache : Cache.t;
  baseline : (string * Metrics.labels) list;
  m_queue_depth : Metrics.gauge;
  m_served : Metrics.counter;
  m_errors : Metrics.counter;
  m_disconnects : Metrics.counter;
  mutable domains : unit Domain.t list;
  mutable drain_seen_at : float option;
  mutable published : bool;
}

(* ------------------------- shared bookkeeping ------------------------ *)

let locked t f = Mutex.protect t.mu f

let count_reject t reason =
  locked t (fun () ->
      Hashtbl.replace t.rejected reason
        (1 + Option.value (Hashtbl.find_opt t.rejected reason) ~default:0))

let stats t =
  locked t (fun () ->
      {
        Protocol.uptime_s = Clock.now_s () -. t.started_at;
        served = t.served;
        errors = t.errors;
        disconnects = t.disconnects;
        rejected =
          Hashtbl.fold (fun r n acc -> (r, n) :: acc) t.rejected []
          |> List.sort compare;
        queue_depth = t.depth;
        active = t.active;
        workers = t.cfg.workers;
        jobs = t.cfg.jobs;
        cache_len = Cache.length t.cache;
        draining = Atomic.get t.draining;
      })

(* ------------------------------ admission ---------------------------- *)

(* Every response write may hit a vanished peer; the reject path must
   never take the daemon down with it. *)
let try_respond fd response =
  try
    Protocol.send_response fd response;
    true
  with
  | Unix.Unix_error (_, _, _) | Sys_error _ -> false

let close_quiet fd = try Unix.close fd with Unix.Unix_error (_, _, _) -> ()

let reject t fd reason =
  count_reject t reason;
  let depth = locked t (fun () -> t.depth) in
  ignore (try_respond fd (Protocol.error_response (Error.Overload { reason; depth })));
  close_quiet fd

let reject_frame t fd e =
  count_reject t "bad-frame";
  ignore (try_respond fd (Protocol.error_response e));
  close_quiet fd

(* One connection, in the accept domain: read the single request frame
   (bounded size, bounded stall), answer ping/stats inline, admit route
   work to the queue.  Typed rejects leave here; nothing this function
   does can raise past it. *)
let handle_conn t fd =
  try
    match
      Protocol.read_frame ~max:t.cfg.max_frame ~timeout_s:t.cfg.read_timeout_s
        fd
    with
    | Protocol.Eof ->
        locked t (fun () -> t.disconnects <- t.disconnects + 1);
        close_quiet fd
    | Protocol.Reject e -> reject_frame t fd e
    | Protocol.Frame payload -> (
        match Protocol.request_of_string payload with
        | Error e -> reject_frame t fd e
        | Ok Protocol.Ping ->
            locked t (fun () -> t.served <- t.served + 1);
            ignore (try_respond fd Protocol.Pong);
            close_quiet fd
        | Ok Protocol.Stats ->
            let s = stats t in
            locked t (fun () -> t.served <- t.served + 1);
            ignore (try_respond fd (Protocol.Stats_reply s));
            close_quiet fd
        | Ok (Protocol.Route { netlist; options }) ->
            let admitted =
              locked t (fun () ->
                  if Atomic.get t.draining then `Reject "draining"
                  else if t.depth >= t.cfg.queue_bound then `Reject "queue-full"
                  else begin
                    let serial = t.next_serial in
                    t.next_serial <- serial + 1;
                    Queue.push
                      { serial; fd; netlist_text = netlist; options }
                      t.queue;
                    t.depth <- t.depth + 1;
                    Condition.signal t.cond;
                    `Admitted
                  end)
            in
            (match admitted with
            | `Admitted -> ()
            | `Reject reason -> reject t fd reason))
  with exn ->
    Log.warn
      ~fields:[ ("exn", Printexc.to_string exn) ]
      "serve: connection setup failed; dropping peer";
    locked t (fun () -> t.disconnects <- t.disconnects + 1);
    close_quiet fd

let accept_loop t =
  let rec loop () =
    if not (Atomic.get t.draining) then begin
      (match Unix.select [ t.lsock ] [] [] 0.25 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept t.lsock with
          | fd, _ -> handle_conn t fd
          | exception Unix.Unix_error (_, _, _) -> ()));
      loop ()
    end
  in
  loop ();
  (* drain sweep: peers whose connect already completed against the
     backlog get a typed "draining" reject instead of a hung socket *)
  let rec sweep () =
    match Unix.select [ t.lsock ] [] [] 0.0 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
        match Unix.accept t.lsock with
        | fd, _ ->
            reject t fd "draining";
            sweep ()
        | exception Unix.Unix_error (_, _, _) -> ())
  in
  sweep ();
  close_quiet t.lsock;
  locked t (fun () ->
      t.accept_done <- true;
      (* wake idle workers so they observe the drain *)
      Condition.broadcast t.cond)

(* -------------------------- request handling ------------------------- *)

(* Client-disconnect watcher: a sys-thread sharing the worker domain
   (preempted by the runtime tick, so it runs even while the flow is
   CPU-bound).  The protocol allows no client bytes after the request
   frame, so readability means EOF (peer closed) or garbage; EOF and
   socket errors cancel the request's deadline, which the flow observes
   at its next cooperative checkpoint. *)
let monitor_fd fd deadline stop =
  let buf = Bytes.create 1 in
  let rec loop () =
    if not (Atomic.get stop) then begin
      match Unix.select [ fd ] [] [] 0.15 with
      | [], _, _ -> loop ()
      | _ :: _, _, _ -> (
          match Unix.recv fd buf 0 1 [] with
          | 0 -> Deadline.cancel deadline
          | _ -> loop () (* protocol garbage; consume and keep watching *)
          | exception Unix.Unix_error (_, _, _) -> Deadline.cancel deadline)
    end
  in
  loop ()

let effective_budget_ms t (options : Protocol.options) =
  let req = max 0 options.deadline_ms and cap = t.cfg.request_deadline_ms in
  if cap <= 0 then req else if req <= 0 then cap else min req cap

(* The route computation itself, mirroring gsino_lint's sequence exactly
   (prepare on the GSINO config, sensitivity from seed lxor 0xbeef, one
   Flow.run, Flow.check) so a served response is byte-comparable to the
   batch CLI's artifacts. *)
let route_result t pool (job : job) deadline =
  Fault.point "serve.request";
  let { Protocol.kind; router; budgeting; seed; rate; artifacts; _ } =
    job.options
  in
  let tech = Tech.default in
  let netlist = Io.of_string job.netlist_text in
  let config kind =
    {
      Flow.Config.default with
      Flow.Config.kind;
      router;
      budgeting;
      seed;
      jobs = t.cfg.jobs;
    }
  in
  let grid, base =
    Flow.prepare ~config:(config Flow.Gsino) ~pool tech netlist
  in
  let sensitivity = Sensitivity.make ~seed:(seed lxor 0xbeef) ~rate in
  let r =
    Flow.run ~grid ~base ~pool ~cache:t.cache ~deadline (config kind) tech
      ~sensitivity netlist
  in
  let diags = Flow.check ~tech r in
  let artifact = function
    | Protocol.Report ->
        ( "report",
          Eda_reportviz.Run_report.text ~tech ~snapshot:(Metrics.snapshot ()) r
        )
    | Protocol.Metrics ->
        ("metrics", Json.to_string (Metrics.to_json (Metrics.snapshot ())) ^ "\n")
    | Protocol.Journal -> ("journal", Journal.to_string (Journal.events ()))
    | Protocol.Trace ->
        ("trace", Json.to_string (Trace.to_chrome_json ()) ^ "\n")
  in
  Protocol.Result
    {
      status = (if Flow.degraded r then "degraded" else "ok");
      summary = Format.asprintf "%a" Flow.pp_summary r;
      findings = List.map Diag.to_line diags;
      artifacts = List.map artifact artifacts;
    }

let handle_route t pool (job : job) =
  let deadline =
    Deadline.cancellable ~budget_ms:(effective_budget_ms t job.options) ()
  in
  locked t (fun () -> Hashtbl.replace t.active_deadlines job.serial deadline);
  let stop = Atomic.make false in
  let monitor = Thread.create (fun () -> monitor_fd job.fd deadline stop) () in
  (* fresh per-request observability context on this domain: metrics
     shard rebased to the startup instrument set, journal shard cleared,
     trace ring armed only when the client asked for the artifact *)
  Metrics.rebase t.baseline;
  Journal.clear ();
  if List.mem Protocol.Trace job.options.artifacts then Trace.enable ()
  else Trace.disable ();
  let response =
    (* per-request guard: any failure becomes a framed typed error — the
       daemon never dies for one request *)
    try route_result t pool job deadline with
    | exn -> (
        let e =
          match exn with
          | Gsino.Nc_router.Unreachable { net; region } ->
              Error.Unreachable { net; region }
          | exn -> (
              match Error.of_exn exn with
              | Some e -> e
              | None ->
                  Error.Worker_crash
                    { site = "serve.request"; msg = Printexc.to_string exn })
        in
        Protocol.error_response e)
  in
  Trace.disable ();
  Atomic.set stop true;
  Thread.join monitor;
  let sent = try_respond job.fd response in
  close_quiet job.fd;
  locked t (fun () ->
      Hashtbl.remove t.active_deadlines job.serial;
      t.active <- t.active - 1;
      if not sent then t.disconnects <- t.disconnects + 1
      else
        match response with
        | Protocol.Err _ -> t.errors <- t.errors + 1
        | Protocol.Pong | Protocol.Stats_reply _ | Protocol.Result _ ->
            t.served <- t.served + 1)

let worker_loop t =
  Eda_exec.with_pool ~jobs:t.cfg.jobs @@ fun pool ->
  let next () =
    locked t (fun () ->
        let rec get () =
          if not (Queue.is_empty t.queue) then begin
            let j = Queue.pop t.queue in
            t.depth <- t.depth - 1;
            t.active <- t.active + 1;
            Some j
          end
          else if Atomic.get t.draining then None
          else begin
            Condition.wait t.cond t.mu;
            get ()
          end
        in
        get ())
  in
  let rec loop () =
    match next () with
    | None -> ()
    | Some job ->
        handle_route t pool job;
        loop ()
  in
  loop ()

(* ------------------------------ lifecycle ---------------------------- *)

let start cfg =
  let cfg =
    {
      cfg with
      workers = max 1 cfg.workers;
      jobs = max 1 cfg.jobs;
      queue_bound = max 0 cfg.queue_bound;
    }
  in
  if Sys.os_type = "Unix" then
    ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  (* Force the lazily built shared models once, before any request
     domain exists: Lazy.force racing across domains is unsafe, and
     every request would otherwise pay the first-forcing cost. *)
  ignore (Flow.analyze_config Tech.default);
  (* The journal records on any domain once enabled; enabling (and
     registering journal.events) before the baseline capture makes the
     per-request instrument set match a batch `--journal` run. *)
  Journal.enable ();
  let baseline = Metrics.registered () in
  (* serve.* instruments register *after* the capture, so request-scoped
     metrics exports carry no serve series — they are daemon-lifetime
     series, exported by the daemon itself. *)
  let m_queue_depth = Metrics.gauge "serve.queue_depth" in
  let m_served = Metrics.counter "serve.served" in
  let m_errors = Metrics.counter "serve.errors" in
  let m_disconnects = Metrics.counter "serve.disconnects" in
  let cache =
    match cfg.cache_dir with
    | Some dir -> Cache.load dir
    | None -> Cache.create ()
  in
  (try Unix.unlink cfg.socket with Unix.Unix_error (_, _, _) -> ());
  let lsock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind lsock (Unix.ADDR_UNIX cfg.socket);
     Unix.listen lsock 64
   with e ->
     close_quiet lsock;
     raise e);
  let t =
    {
      cfg;
      lsock;
      started_at = Clock.now_s ();
      draining = Atomic.make false;
      mu = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      depth = 0;
      served = 0;
      errors = 0;
      disconnects = 0;
      rejected = Hashtbl.create 8;
      active = 0;
      active_deadlines = Hashtbl.create 16;
      next_serial = 0;
      accept_done = false;
      workers_live = cfg.workers;
      cache;
      baseline;
      m_queue_depth;
      m_served;
      m_errors;
      m_disconnects;
      domains = [];
      drain_seen_at = None;
      published = false;
    }
  in
  let accept_d = Domain.spawn (fun () -> accept_loop t) in
  let worker_d =
    List.init cfg.workers (fun _ ->
        Domain.spawn (fun () ->
            Fun.protect
              ~finally:(fun () ->
                locked t (fun () -> t.workers_live <- t.workers_live - 1))
              (fun () -> worker_loop t)))
  in
  t.domains <- accept_d :: worker_d;
  Log.info
    ~fields:
      [
        ("socket", cfg.socket);
        ("workers", string_of_int cfg.workers);
        ("jobs", string_of_int cfg.jobs);
      ]
    "gsino_serve: listening";
  t

(* Signal-handler-safe: one atomic store.  Everything that must happen
   after — waking workers, the drain grace timer, the cache flush —
   happens on the thread sitting in [wait]. *)
let drain t = Atomic.set t.draining true
let draining t = Atomic.get t.draining

let publish_metrics t =
  locked t (fun () ->
      if t.published then ()
      else begin
        t.published <- true;
        Metrics.set t.m_queue_depth (float_of_int t.depth);
        Metrics.add t.m_served t.served;
        Metrics.add t.m_errors t.errors;
        Metrics.add t.m_disconnects t.disconnects;
        Hashtbl.iter
          (fun reason n ->
            Metrics.add
              (Metrics.counter ~labels:[ ("reason", reason) ] "serve.rejected")
              n)
          t.rejected
      end)

let wait t =
  let rec loop () =
    (if Atomic.get t.draining then begin
       (match t.drain_seen_at with
       | None -> t.drain_seen_at <- Some (Clock.now_s ())
       | Some _ -> ());
       locked t (fun () -> Condition.broadcast t.cond);
       match t.drain_seen_at with
       | Some t0
         when t.cfg.drain_ms > 0
              && Clock.now_s () -. t0 >= float_of_int t.cfg.drain_ms /. 1000.0
         ->
           (* grace expired: trip every in-flight deadline; the requests
              finish degraded at their next checkpoint instead of being
              killed *)
           locked t (fun () ->
               Hashtbl.iter (fun _ d -> Deadline.cancel d) t.active_deadlines)
       | Some _ | None -> ()
     end);
    let finished =
      locked t (fun () -> t.accept_done && t.workers_live = 0)
    in
    if not finished then begin
      Unix.sleepf 0.05;
      loop ()
    end
  in
  loop ();
  List.iter Domain.join t.domains;
  t.domains <- [];
  (match t.cfg.cache_dir with
  | Some dir -> Cache.save t.cache dir
  | None -> ());
  (try Unix.unlink t.cfg.socket with Unix.Unix_error (_, _, _) -> ());
  publish_metrics t;
  Log.info
    ~fields:
      [
        ("served", string_of_int t.served);
        ("errors", string_of_int t.errors);
      ]
    "gsino_serve: drained"

let run cfg =
  let t = start cfg in
  if Sys.os_type = "Unix" then begin
    let handler = Sys.Signal_handle (fun _ -> drain t) in
    Sys.set_signal Sys.sigterm handler;
    Sys.set_signal Sys.sigint handler
  end;
  wait t
